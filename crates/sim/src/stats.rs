//! Statistic primitives used throughout the simulator.
//!
//! The paper reports three kinds of quantities: latencies (Figure 6),
//! bandwidths (Figure 7) and execution times / bus occupancies (Figure 8 and
//! §5.2). The types in this module cover all three:
//!
//! * [`Counter`] — a monotonically increasing event count.
//! * [`Histogram`] — sample distribution with mean/min/max/percentiles, used
//!   for per-message latencies.
//! * [`OccupancyTracker`] — accumulates how many cycles a shared resource
//!   (a bus) was busy, broken down by transaction kind, which is exactly what
//!   the memory-bus-occupancy comparison in §5.2 needs.
//! * [`StatsRegistry`] — a string-keyed collection of the above so harness
//!   code can dump everything uniformly.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::Cycle;

/// A simple monotonically increasing counter.
///
/// ```
/// use cni_sim::stats::Counter;
/// let mut c = Counter::default();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Adds one to the counter.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }

    /// Resets the counter to zero.
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)
    }
}

/// A sample distribution.
///
/// Stores every sample (the simulations here produce at most a few hundred
/// thousand samples per run, so this is cheap) and computes summary
/// statistics on demand.
///
/// ```
/// use cni_sim::stats::Histogram;
/// let mut h = Histogram::new();
/// for v in [10, 20, 30] { h.record(v); }
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.min(), Some(10));
/// assert_eq!(h.max(), Some(30));
/// assert!((h.mean().unwrap() - 20.0).abs() < 1e-9);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    samples: Vec<u64>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.samples.push(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.samples.iter().sum()
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        self.samples.iter().copied().min()
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        self.samples.iter().copied().max()
    }

    /// Arithmetic mean, if any samples were recorded.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.sum() as f64 / self.samples.len() as f64)
        }
    }

    /// The `p`-th percentile (0.0..=100.0) using nearest-rank, if non-empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0.0..=100.0`.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        Some(sorted[rank.min(sorted.len() - 1)])
    }

    /// Removes all samples.
    pub fn reset(&mut self) {
        self.samples.clear();
    }

    /// Iterates over the raw samples in recording order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.samples.iter().copied()
    }
}

/// Tracks how long a shared resource was occupied, broken down by a caller
/// supplied kind label.
///
/// Buses use this to report occupancy per transaction type; the §5.2 claim
/// that CQ-based CNIs cut memory-bus occupancy by ~66 % relative to `NI2w`
/// is computed from two of these trackers.
///
/// ```
/// use cni_sim::stats::OccupancyTracker;
/// let mut t = OccupancyTracker::new();
/// t.record("uncached_load", 28);
/// t.record("uncached_load", 28);
/// t.record("cache_to_cache", 42);
/// assert_eq!(t.total_busy(), 98);
/// assert_eq!(t.busy_for("uncached_load"), 56);
/// assert_eq!(t.transactions(), 3);
/// ```
// No `Deserialize`: the interned `&'static str` keys make the tracker
// serializable but not deserializable (real serde cannot conjure a
// `&'static str` from input data), and nothing round-trips trackers.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize)]
pub struct OccupancyTracker {
    // Kinds are interned static labels: recording a transaction on the
    // simulator's hot path must not allocate (a `String` key per bus
    // transaction showed up as the dominant allocation in the machine loop).
    by_kind: BTreeMap<&'static str, (u64, Cycle)>,
    total_busy: Cycle,
    transactions: u64,
}

impl OccupancyTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a transaction of `kind` that occupied the resource for
    /// `cycles` cycles.
    ///
    /// `kind` is a `&'static str` so the per-transaction record is
    /// allocation-free; every call site labels transactions with string
    /// literals anyway.
    pub fn record(&mut self, kind: &'static str, cycles: Cycle) {
        let entry = self.by_kind.entry(kind).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += cycles;
        self.total_busy += cycles;
        self.transactions += 1;
    }

    /// Total busy cycles across all kinds.
    pub fn total_busy(&self) -> Cycle {
        self.total_busy
    }

    /// Total number of transactions across all kinds.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Busy cycles attributed to `kind` (zero if never recorded).
    pub fn busy_for(&self, kind: &str) -> Cycle {
        self.by_kind.get(kind).map(|(_, c)| *c).unwrap_or(0)
    }

    /// Number of transactions of `kind` (zero if never recorded).
    pub fn count_for(&self, kind: &str) -> u64 {
        self.by_kind.get(kind).map(|(n, _)| *n).unwrap_or(0)
    }

    /// Utilisation in `0.0..=1.0` over an elapsed wall-clock interval.
    ///
    /// Returns zero when `elapsed` is zero.
    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.total_busy as f64 / elapsed as f64
        }
    }

    /// Iterates over `(kind, transaction count, busy cycles)` in
    /// lexicographic kind order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64, Cycle)> + '_ {
        self.by_kind.iter().map(|(k, (n, c))| (*k, *n, *c))
    }

    /// Resets the tracker.
    pub fn reset(&mut self) {
        self.by_kind.clear();
        self.total_busy = 0;
        self.transactions = 0;
    }

    /// Merges another tracker into this one.
    pub fn merge(&mut self, other: &OccupancyTracker) {
        for (kind, n, cycles) in other.iter() {
            let entry = self.by_kind.entry(kind).or_insert((0, 0));
            entry.0 += n;
            entry.1 += cycles;
        }
        self.total_busy += other.total_busy;
        self.transactions += other.transactions;
    }
}

/// A string-keyed registry of counters and histograms.
///
/// Harness binaries use this to dump everything a simulation collected in a
/// uniform, diffable format.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct StatsRegistry {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
}

impl StatsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (creating if necessary) the counter named `name`.
    pub fn counter(&mut self, name: &str) -> &mut Counter {
        self.counters.entry(name.to_owned()).or_default()
    }

    /// Returns (creating if necessary) the histogram named `name`.
    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        self.histograms.entry(name.to_owned()).or_default()
    }

    /// Reads a counter's value, zero if it does not exist.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).map(|c| c.get()).unwrap_or(0)
    }

    /// Reads a histogram, `None` if it does not exist.
    pub fn histogram_ref(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates over counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (k.as_str(), v.get()))
    }

    /// Iterates over histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> + '_ {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Clears every counter and histogram (keys are retained).
    pub fn reset(&mut self) {
        for c in self.counters.values_mut() {
            c.reset();
        }
        for h in self.histograms.values_mut() {
            h.reset();
        }
    }
}

impl fmt::Display for StatsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in self.counters() {
            writeln!(f, "{name}: {value}")?;
        }
        for (name, hist) in self.histograms() {
            writeln!(
                f,
                "{name}: n={} mean={:.1} min={:?} max={:?}",
                hist.count(),
                hist.mean().unwrap_or(0.0),
                hist.min(),
                hist.max()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_summary_statistics() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        for v in 1..=100 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
        assert!((h.mean().unwrap() - 50.5).abs() < 1e-9);
        assert_eq!(h.percentile(0.0), Some(1));
        assert_eq!(h.percentile(100.0), Some(100));
        let median = h.percentile(50.0).unwrap();
        assert!((50..=51).contains(&median));
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn histogram_percentile_rejects_out_of_range() {
        let h = Histogram::new();
        let _ = h.percentile(101.0);
    }

    #[test]
    fn occupancy_breakdown_and_merge() {
        let mut a = OccupancyTracker::new();
        a.record("x", 10);
        a.record("y", 5);
        let mut b = OccupancyTracker::new();
        b.record("x", 7);
        a.merge(&b);
        assert_eq!(a.total_busy(), 22);
        assert_eq!(a.busy_for("x"), 17);
        assert_eq!(a.count_for("x"), 2);
        assert_eq!(a.transactions(), 3);
        assert!((a.utilization(44) - 0.5).abs() < 1e-9);
        assert_eq!(a.utilization(0), 0.0);
    }

    #[test]
    fn registry_round_trip() {
        let mut reg = StatsRegistry::new();
        reg.counter("messages").add(12);
        reg.histogram("latency").record(300);
        assert_eq!(reg.counter_value("messages"), 12);
        assert_eq!(reg.counter_value("missing"), 0);
        assert_eq!(reg.histogram_ref("latency").unwrap().count(), 1);
        let rendered = reg.to_string();
        assert!(rendered.contains("messages: 12"));
        reg.reset();
        assert_eq!(reg.counter_value("messages"), 0);
    }
}
