//! Time base for the simulator.
//!
//! Everything in the reproduction is expressed in **processor cycles** of the
//! 200 MHz dual-issue SPARC-like processor the paper models (§4.1). The
//! memory bus runs at 100 MHz (one bus cycle = 2 processor cycles) and the
//! coherent I/O bus at 50 MHz (one bus cycle = 4 processor cycles); the bus
//! occupancies of Table 2 are already given in processor cycles, so the
//! conversion constants below are mostly needed for reporting (e.g.
//! microseconds on the vertical axis of Figure 6 and MB/s in Figure 7).

/// A point in simulated time, measured in 200 MHz processor cycles.
pub type Cycle = u64;

/// Processor clock frequency in hertz (200 MHz, §4.1).
pub const PROCESSOR_HZ: u64 = 200_000_000;

/// Memory bus clock frequency in hertz (100 MHz multiplexed coherent bus).
pub const MEMORY_BUS_HZ: u64 = 100_000_000;

/// I/O bus clock frequency in hertz (50 MHz multiplexed coherent bus).
pub const IO_BUS_HZ: u64 = 50_000_000;

/// Number of processor cycles per memory-bus cycle.
pub const CYCLES_PER_MEMORY_BUS_CYCLE: u64 = PROCESSOR_HZ / MEMORY_BUS_HZ;

/// Number of processor cycles per I/O-bus cycle.
pub const CYCLES_PER_IO_BUS_CYCLE: u64 = PROCESSOR_HZ / IO_BUS_HZ;

/// Converts a cycle count to microseconds of simulated time.
///
/// ```
/// use cni_sim::time::cycles_to_micros;
/// // 200 cycles at 200 MHz is one microsecond.
/// assert!((cycles_to_micros(200) - 1.0).abs() < 1e-12);
/// ```
pub fn cycles_to_micros(cycles: Cycle) -> f64 {
    cycles as f64 / (PROCESSOR_HZ as f64 / 1_000_000.0)
}

/// Converts a cycle count to nanoseconds of simulated time.
pub fn cycles_to_nanos(cycles: Cycle) -> f64 {
    cycles as f64 / (PROCESSOR_HZ as f64 / 1_000_000_000.0)
}

/// Converts a byte count moved in `cycles` cycles into a bandwidth in MB/s.
///
/// Returns zero for a zero-cycle interval so callers do not have to special
/// case empty measurements.
///
/// ```
/// use cni_sim::time::bytes_per_cycles_to_mbps;
/// // 64 bytes every 89 cycles at 200 MHz is roughly 144 MB/s, the paper's
/// // normalisation constant for Figure 7.
/// let mbps = bytes_per_cycles_to_mbps(64, 89);
/// assert!(mbps > 140.0 && mbps < 148.0);
/// ```
pub fn bytes_per_cycles_to_mbps(bytes: u64, cycles: Cycle) -> f64 {
    if cycles == 0 {
        return 0.0;
    }
    let seconds = cycles as f64 / PROCESSOR_HZ as f64;
    (bytes as f64 / 1_000_000.0) / seconds
}

/// Converts microseconds to processor cycles, rounding up.
pub fn micros_to_cycles(micros: f64) -> Cycle {
    (micros * (PROCESSOR_HZ as f64 / 1_000_000.0)).ceil() as Cycle
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_clock_ratios_match_the_paper() {
        assert_eq!(CYCLES_PER_MEMORY_BUS_CYCLE, 2);
        assert_eq!(CYCLES_PER_IO_BUS_CYCLE, 4);
    }

    #[test]
    fn micros_round_trips_through_cycles() {
        for micros in [0.5, 1.0, 3.25, 10.0] {
            let cycles = micros_to_cycles(micros);
            let back = cycles_to_micros(cycles);
            assert!(
                (back - micros).abs() < 0.01,
                "{micros} -> {cycles} -> {back}"
            );
        }
    }

    #[test]
    fn nanos_is_a_thousand_times_micros() {
        assert!((cycles_to_nanos(200) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_cycles_gives_zero_bandwidth() {
        assert_eq!(bytes_per_cycles_to_mbps(1024, 0), 0.0);
    }

    #[test]
    fn bandwidth_scales_linearly_with_bytes() {
        let one = bytes_per_cycles_to_mbps(64, 100);
        let two = bytes_per_cycles_to_mbps(128, 100);
        assert!((two - 2.0 * one).abs() < 1e-9);
    }
}
