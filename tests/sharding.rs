//! Shard-equivalence properties: sharding is a simulator-performance knob,
//! never a results knob.
//!
//! Every test compares full [`RunReport`]s — execution cycles, fabric
//! traffic, bus occupancy and per-node statistics — across the 1-shard
//! sequential run (the reference), an N-shard sequential run and an N-shard
//! parallel run of the *same* machine. The reports must be bit-identical:
//! the epoch driver's lookahead plus the canonical `(arrival, origin, seq)`
//! merge order make per-node event order a pure function of the simulation
//! (see the `cni::core::machine` module docs for the argument).
//!
//! Randomization follows the house style of `tests/properties.rs`: many
//! cases derived from a fixed master seed via [`DetRng`], so a failure
//! reproduces exactly and names its case.

use cni::core::machine::{Machine, MachineConfig, RunReport, ShardPolicy};
use cni::nic::NiKind;
use cni::sim::event::QueueBackend;
use cni::sim::rng::DetRng;
use cni::workloads::{Workload, WorkloadParams};

fn run(cfg: MachineConfig, workload: Workload, params: &WorkloadParams) -> RunReport {
    let programs = workload.programs(cfg.nodes, params);
    Machine::new(cfg, programs).run()
}

/// Like [`run`], but also returns the epoch driver's outcome so tests can
/// assert speculation (or any other lookahead machinery) actually engaged.
fn run_with_outcome(
    cfg: MachineConfig,
    workload: Workload,
    params: &WorkloadParams,
) -> (RunReport, cni::core::machine::EpochOutcome) {
    let programs = workload.programs(cfg.nodes, params);
    let mut machine = Machine::new(cfg, programs);
    let report = machine.run();
    let outcome = *machine
        .epoch_outcome()
        .expect("run() always records an epoch outcome");
    (report, outcome)
}

/// Sequential 1-shard, sequential N-shard and parallel N-shard runs are
/// bit-identical for every NI kind, across two workloads with different
/// communication patterns (fine-grain spsolve, broadcast-heavy gauss) and
/// randomized machine/shard shapes.
#[test]
fn sharding_never_changes_results() {
    let mut rng = DetRng::new(0x5AAD);
    for kind in NiKind::ALL {
        for workload in [Workload::Spsolve, Workload::Gauss] {
            let nodes = 3 + rng.gen_index(8); // 3..=10
            let shards = 2 + rng.gen_index(nodes - 1); // 2..=nodes
            let params = WorkloadParams::tiny();
            let case = format!("{kind}/{workload}: {nodes} nodes, {shards} shards");

            let reference = run(MachineConfig::isca96(nodes, kind), workload, &params);
            assert!(reference.completed, "{case}: reference did not complete");

            let sequential = run(
                MachineConfig::isca96(nodes, kind).with_shards(ShardPolicy::Fixed(shards)),
                workload,
                &params,
            );
            assert_eq!(
                sequential, reference,
                "{case}: sequential N-shard run diverged"
            );

            let parallel = run(
                MachineConfig::isca96(nodes, kind)
                    .with_shards(ShardPolicy::Fixed(shards))
                    .with_parallel(true),
                workload,
                &params,
            );
            assert_eq!(parallel, reference, "{case}: parallel N-shard run diverged");
        }
    }
}

/// The two event-queue backends stay pop-order identical under sharding.
#[test]
fn sharding_is_backend_independent() {
    let params = WorkloadParams::tiny();
    let mut reports = Vec::new();
    for backend in [QueueBackend::TimingWheel, QueueBackend::BinaryHeap] {
        for policy in [ShardPolicy::Single, ShardPolicy::Fixed(3)] {
            reports.push(run(
                MachineConfig::isca96(6, NiKind::Cni16Qm)
                    .with_queue_backend(backend)
                    .with_shards(policy),
                Workload::Em3d,
                &params,
            ));
        }
    }
    for report in &reports[1..] {
        assert_eq!(*report, reports[0], "backend × sharding grid diverged");
    }
}

/// The acceptance-scale case: a 256-node machine on 8 shards — sequential
/// and parallel — is bit-identical to the 1-shard sequential run.
#[test]
fn large_machine_shards_bit_identically() {
    let nodes = 256;
    let mut params = WorkloadParams::tiny();
    // Keep the debug-build runtime sane while still crossing shard
    // boundaries constantly: a small weak-scaled em3d graph with half its
    // edges remote.
    params.em3d.graph_nodes = nodes * 4;
    params.em3d.remote_fraction = 0.5;
    params.em3d.iterations = 2;

    let reference = run(
        MachineConfig::isca96(nodes, NiKind::Cni512Q),
        Workload::Em3d,
        &params,
    );
    assert!(reference.completed, "256-node reference did not complete");
    assert!(
        reference.fabric.messages > 1_000,
        "the 256-node case should exercise real cross-shard traffic, got {}",
        reference.fabric.messages
    );

    for parallel in [false, true] {
        let report = run(
            MachineConfig::isca96(nodes, NiKind::Cni512Q)
                .with_shards(ShardPolicy::Fixed(8))
                .with_parallel(parallel),
            Workload::Em3d,
            &params,
        );
        assert_eq!(
            report, reference,
            "256-node 8-shard (parallel = {parallel}) run diverged"
        );
    }
}

/// `ShardPolicy::Auto` resolves shard count and execution mode from the
/// host shape deterministically: single-core hosts stay sequential (and
/// only shard big machines, for locality), multi-core hosts go as wide as
/// the cores and the 16-node-per-shard floor allow, and everything clamps
/// at the node count.
#[test]
fn auto_policy_resolution_covers_host_shapes() {
    let auto = ShardPolicy::Auto;
    // (nodes, cores) -> shard count.
    let expectations = [
        // One core: sequential sharding only pays off from 256 nodes up.
        (16, 1, 1),
        (64, 1, 1),
        (255, 1, 1),
        (256, 1, 4),
        (1024, 1, 4),
        // Many cores: one shard per core, floored at 16 nodes per shard.
        (16, 8, 1),
        (32, 2, 2),
        (64, 4, 4),
        (64, 64, 4),
        (256, 16, 16),
        (1024, 64, 64),
        // Clamping at the node count and degenerate core counts.
        (2, 64, 1),
        (1, 1, 1),
        (512, 0, 4),
    ];
    for (nodes, cores, want) in expectations {
        assert_eq!(
            auto.resolve_for(nodes, cores),
            want,
            "Auto at {nodes} nodes / {cores} cores"
        );
    }
    // Auto decides parallelism from the cores, not from the config flag.
    assert!(auto.resolve_parallel_for(64, 4, false));
    assert!(!auto.resolve_parallel_for(64, 1, true));
    // One shard: never parallel.
    assert!(!auto.resolve_parallel_for(16, 8, true));
    // The host-reading entry points agree with the pure ones.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    assert_eq!(auto.resolve(100), auto.resolve_for(100, cores));
    let cfg = MachineConfig::isca96(100, NiKind::Cni512Q).with_shards(ShardPolicy::Auto);
    assert_eq!(cfg.shard_count(), auto.resolve_for(100, cores));
    assert_eq!(
        cfg.exec_parallel(),
        auto.resolve_parallel_for(100, cores, false)
    );
}

/// Randomized property: with the exchange-skipping barrier, every
/// execution layout — `Auto`, and explicitly parallel shardings on the
/// persistent worker pool — stays bit-identical to `ShardPolicy::Single`,
/// for all five NI kinds. The workload mix includes compute-heavy skeletons
/// (moldyn, appbt) whose quiescent stretches run exchange-free, so the
/// skip path itself is exercised, not just the dense-traffic path.
#[test]
fn barrier_skipping_layouts_match_single_for_every_ni() {
    let mut rng = DetRng::new(0xBA77_1E55);
    let workloads = [Workload::Moldyn, Workload::Appbt, Workload::Em3d];
    for kind in NiKind::ALL {
        for &workload in &workloads {
            let nodes = 4 + rng.gen_index(7); // 4..=10
            let shards = 2 + rng.gen_index(3); // 2..=4
            let params = WorkloadParams::tiny();
            let case = format!("{kind}/{workload}: {nodes} nodes, {shards} shards");

            let reference = run(
                MachineConfig::isca96(nodes, kind).with_shards(ShardPolicy::Single),
                workload,
                &params,
            );
            assert!(reference.completed, "{case}: reference did not complete");

            let auto = run(
                MachineConfig::isca96(nodes, kind).with_shards(ShardPolicy::Auto),
                workload,
                &params,
            );
            assert_eq!(auto, reference, "{case}: Auto layout diverged");

            let parallel = run(
                MachineConfig::isca96(nodes, kind)
                    .with_shards(ShardPolicy::Fixed(shards))
                    .with_parallel(true),
                workload,
                &params,
            );
            assert_eq!(
                parallel, reference,
                "{case}: parallel worker-pool run diverged"
            );
        }
    }
}

/// The workloads this PR added beyond the original five — the restored
/// paper macrobenchmarks (request/response barnes, variable-size-ring dsmc,
/// irregular-halo unstructured) and one synthetic pattern (hotspot
/// convergence) — shard bit-identically too: 1-shard sequential vs N-shard
/// sequential vs N-shard parallel vs `Auto`, for every NI kind, with
/// randomized machine/shard shapes in the house style.
#[test]
fn new_workloads_shard_bit_identically() {
    let mut rng = DetRng::new(0x6E77_3713);
    let workloads = [
        Workload::Barnes,
        Workload::Dsmc,
        Workload::Unstructured,
        Workload::Hotspot,
    ];
    for kind in NiKind::ALL {
        for &workload in &workloads {
            let nodes = 4 + rng.gen_index(7); // 4..=10
            let shards = 2 + rng.gen_index(3); // 2..=4
            let params = WorkloadParams::tiny();
            let case = format!("{kind}/{workload}: {nodes} nodes, {shards} shards");

            let reference = run(MachineConfig::isca96(nodes, kind), workload, &params);
            assert!(reference.completed, "{case}: reference did not complete");
            assert!(
                reference.fabric.messages > 0,
                "{case}: the case must exercise real network traffic"
            );

            let sequential = run(
                MachineConfig::isca96(nodes, kind).with_shards(ShardPolicy::Fixed(shards)),
                workload,
                &params,
            );
            assert_eq!(
                sequential, reference,
                "{case}: sequential N-shard run diverged"
            );

            let parallel = run(
                MachineConfig::isca96(nodes, kind)
                    .with_shards(ShardPolicy::Fixed(shards))
                    .with_parallel(true),
                workload,
                &params,
            );
            assert_eq!(parallel, reference, "{case}: parallel N-shard run diverged");

            let auto = run(
                MachineConfig::isca96(nodes, kind).with_shards(ShardPolicy::Auto),
                workload,
                &params,
            );
            assert_eq!(auto, reference, "{case}: Auto layout diverged");
        }
    }
}

/// Determinism invariant 5: fault-injection verdicts are a pure function of
/// `(seed, origin, per-node net_seq)`, so a lossy run — drops, detected
/// corruptions, duplicates, delays, plus the reliable-delivery recovery
/// machinery (dedup, acks, retransmission timers) — shards bit-identically
/// too: 1-shard sequential vs N-shard sequential vs N-shard parallel vs
/// `Auto`, for every NI kind across two workloads, with randomized
/// machine/shard shapes in the house style. Every case asserts the faults
/// actually fired, so the equality is never vacuous.
#[test]
fn fault_injection_shards_bit_identically() {
    use cni::net::faults::FaultConfig;
    let mut rng = DetRng::new(0xFA17_5EED);
    for kind in NiKind::ALL {
        for workload in [Workload::Em3d, Workload::Gauss] {
            let nodes = 4 + rng.gen_index(7); // 4..=10
            let shards = 2 + rng.gen_index(3); // 2..=4
            let params = WorkloadParams::tiny();
            let faults = FaultConfig {
                seed: rng.next_u64(),
                drop_ppm: 150_000,
                corrupt_ppm: 100_000,
                duplicate_ppm: 100_000,
                delay_ppm: 100_000,
                ..FaultConfig::default()
            };
            let case = format!(
                "{kind}/{workload}: {nodes} nodes, {shards} shards, fault seed {:#x}",
                faults.seed
            );
            let cfg = || MachineConfig::isca96(nodes, kind).with_faults(faults.clone());

            let reference = run(cfg(), workload, &params);
            assert!(
                reference.completed,
                "{case}: lossy reference did not complete"
            );
            let f = reference.fabric;
            assert!(
                f.faults_dropped > 0 && f.corruptions_detected > 0,
                "{case}: rates this high must drop and corrupt something \
                 (dropped {}, corrupted {})",
                f.faults_dropped,
                f.corruptions_detected
            );

            let sequential = run(
                cfg().with_shards(ShardPolicy::Fixed(shards)),
                workload,
                &params,
            );
            assert_eq!(
                sequential, reference,
                "{case}: sequential N-shard lossy run diverged"
            );

            let parallel = run(
                cfg()
                    .with_shards(ShardPolicy::Fixed(shards))
                    .with_parallel(true),
                workload,
                &params,
            );
            assert_eq!(
                parallel, reference,
                "{case}: parallel N-shard lossy run diverged"
            );

            let auto = run(cfg().with_shards(ShardPolicy::Auto), workload, &params);
            assert_eq!(auto, reference, "{case}: Auto lossy layout diverged");
        }
    }
}

/// Fail-stop/freeze windows (a node unreachable for an interval, then
/// recovered by retransmission) are part of the same invariant: the outage
/// is judged against stamp-pure times, so it shards bit-identically.
#[test]
fn outage_windows_shard_bit_identically() {
    use cni::net::faults::{FailWindow, FaultConfig};
    let params = WorkloadParams::tiny();
    let faults = FaultConfig {
        seed: 0x00D0_0DAD,
        drop_ppm: 50_000,
        fail_windows: vec![
            FailWindow {
                node: 1,
                from: 2_000,
                until: 60_000,
            },
            FailWindow {
                node: 4,
                from: 10_000,
                until: 45_000,
            },
        ],
        ..FaultConfig::default()
    };
    let cfg = || MachineConfig::isca96(6, NiKind::Cni16Q).with_faults(faults.clone());

    let reference = run(cfg(), Workload::Em3d, &params);
    assert!(
        reference.completed,
        "the frozen nodes must recover once their windows close"
    );
    assert!(
        reference.fabric.faults_dropped > 0,
        "traffic into the outage windows must be destroyed"
    );

    for parallel in [false, true] {
        let report = run(
            cfg()
                .with_shards(ShardPolicy::Fixed(3))
                .with_parallel(parallel),
            Workload::Em3d,
            &params,
        );
        assert_eq!(
            report, reference,
            "outage run (parallel = {parallel}) diverged"
        );
    }
}

/// Determinism invariant 6: the adaptive lookahead extension is invisible
/// in results. For every NI kind across three traffic shapes (fine-grain
/// em3d, broadcast-heavy gauss, convergent hotspot) with randomized
/// machine/shard shapes, an adaptive run — sequential and parallel N-shard —
/// is bit-identical to the fixed-lookahead `ShardPolicy::Single` reference.
///
/// The test profile keeps debug assertions on, so this doubles as the
/// over-promise oracle for `ShardSim::earliest_emission`: a forecast later
/// than a real emission trips either the router's lookahead-violation assert
/// (an arrival staged inside the extended epoch) or the event queue's
/// scheduled-in-the-past assert (a held arrival delivered behind the clock).
#[test]
fn adaptive_lookahead_never_over_promises() {
    use cni::core::machine::LookaheadMode;
    let mut rng = DetRng::new(0x0001_00CA_4EAD);
    for kind in NiKind::ALL {
        for workload in [Workload::Em3d, Workload::Gauss, Workload::Hotspot] {
            let nodes = 4 + rng.gen_index(7); // 4..=10
            let shards = 2 + rng.gen_index(3); // 2..=4
            let params = WorkloadParams::tiny();
            let case = format!("{kind}/{workload}: {nodes} nodes, {shards} shards");

            let reference = run(
                MachineConfig::isca96(nodes, kind)
                    .with_shards(ShardPolicy::Single)
                    .with_lookahead(LookaheadMode::Fixed),
                workload,
                &params,
            );
            assert!(reference.completed, "{case}: reference did not complete");

            for parallel in [false, true] {
                let adaptive = run(
                    MachineConfig::isca96(nodes, kind)
                        .with_shards(ShardPolicy::Fixed(shards))
                        .with_parallel(parallel)
                        .with_lookahead(LookaheadMode::Adaptive),
                    workload,
                    &params,
                );
                assert_eq!(
                    adaptive, reference,
                    "{case}: adaptive run (parallel = {parallel}) diverged \
                     from the fixed-lookahead single-shard reference"
                );
            }
        }
    }
}

/// Determinism invariant 7 meets invariant 5: speculation under fault
/// injection. Retransmission timers, duplicate suppression and fault
/// verdicts are all part of the state a rollback must restore, and the
/// lossy mix keeps conflicting traffic flowing into the gambled horizon —
/// so this is the densest rollback workout in the suite. For every NI kind
/// across two workloads with randomized machine/shard shapes, a speculative
/// lossy run — sequential and parallel — is bit-identical to the
/// fixed-lookahead single-shard reference, and every case asserts both that
/// the faults fired and that speculation actually resolved rounds (commit
/// or rollback), so the equality is never vacuous.
#[test]
fn speculative_lookahead_is_unobservable_under_faults() {
    use cni::core::machine::LookaheadMode;
    use cni::net::faults::FaultConfig;
    let mut rng = DetRng::new(0x09EC_FA17);
    for kind in NiKind::ALL {
        for workload in [Workload::Em3d, Workload::Gauss] {
            let nodes = 4 + rng.gen_index(7); // 4..=10
            let shards = 2 + rng.gen_index(3); // 2..=4
            let params = WorkloadParams::tiny();
            let faults = FaultConfig {
                seed: rng.next_u64(),
                drop_ppm: 150_000,
                corrupt_ppm: 100_000,
                duplicate_ppm: 100_000,
                delay_ppm: 100_000,
                ..FaultConfig::default()
            };
            let case = format!(
                "{kind}/{workload}: {nodes} nodes, {shards} shards, fault seed {:#x}",
                faults.seed
            );
            let cfg = || MachineConfig::isca96(nodes, kind).with_faults(faults.clone());

            let reference = run(cfg(), workload, &params);
            assert!(
                reference.completed,
                "{case}: lossy reference did not complete"
            );
            assert!(
                reference.fabric.faults_dropped > 0,
                "{case}: rates this high must drop something"
            );

            for parallel in [false, true] {
                let (speculative, outcome) = run_with_outcome(
                    cfg()
                        .with_shards(ShardPolicy::Fixed(shards))
                        .with_parallel(parallel)
                        .with_lookahead(LookaheadMode::Speculative),
                    workload,
                    &params,
                );
                assert_eq!(
                    speculative, reference,
                    "{case}: speculative lossy run (parallel = {parallel}) diverged"
                );
                assert!(
                    outcome.spec_commits + outcome.spec_rollbacks > 0,
                    "{case}: speculation never resolved a round (parallel = {parallel})"
                );
            }
        }
    }
}

/// Rollback under the two adversarial fault shapes: fail-stop outage
/// windows (a frozen node's retransmission backlog floods the reopening
/// window) and inert retransmission timers (`retransmit: false` with
/// duplicate/delay noise arms timers that fire, rearm and do nothing —
/// checkpointed and restored across every rollback without poisoning the
/// schedule). Both must stay bit-identical to the conservative reference.
#[test]
fn speculative_rollback_survives_outages_and_inert_timers() {
    use cni::core::machine::LookaheadMode;
    use cni::net::faults::{FailWindow, FaultConfig};
    let params = WorkloadParams::tiny();

    let outage = FaultConfig {
        seed: 0x00D0_0DAD,
        drop_ppm: 50_000,
        fail_windows: vec![
            FailWindow {
                node: 1,
                from: 2_000,
                until: 60_000,
            },
            FailWindow {
                node: 4,
                from: 10_000,
                until: 45_000,
            },
        ],
        ..FaultConfig::default()
    };
    let inert_timers = FaultConfig {
        seed: 0x1E47_0000,
        duplicate_ppm: 120_000,
        delay_ppm: 120_000,
        retransmit: false,
        // An RTO shorter than the ack round trip guarantees the inert
        // timers actually expire (and rearm, and expire again) mid-run.
        rto_cycles: 60,
        ..FaultConfig::default()
    };

    for (label, faults) in [("outage", outage), ("inert-timers", inert_timers)] {
        let cfg = || MachineConfig::isca96(6, NiKind::Cni16Q).with_faults(faults.clone());

        let reference = run(cfg(), Workload::Em3d, &params);
        assert!(reference.completed, "{label}: reference did not complete");
        if label == "outage" {
            assert!(
                reference.fabric.faults_dropped > 0,
                "{label}: traffic into the windows must be destroyed"
            );
        } else {
            assert!(
                reference.fabric.dup_discards > 0,
                "{label}: the duplicate rate must fire"
            );
            assert!(
                reference.fabric.timeouts > 0,
                "{label}: the inert timers must actually expire"
            );
        }

        for parallel in [false, true] {
            let (speculative, outcome) = run_with_outcome(
                cfg()
                    .with_shards(ShardPolicy::Fixed(3))
                    .with_parallel(parallel)
                    .with_lookahead(LookaheadMode::Speculative),
                Workload::Em3d,
                &params,
            );
            assert_eq!(
                speculative, reference,
                "{label}: speculative run (parallel = {parallel}) diverged"
            );
            assert!(
                outcome.spec_commits + outcome.spec_rollbacks > 0,
                "{label}: speculation never resolved a round (parallel = {parallel})"
            );
        }
    }
}

/// The service workloads' figure of merit — the tail of the merged
/// request-latency histogram — is part of the determinism contract, not just
/// a by-product of report equality. For both RPC disciplines across every NI
/// kind with randomized machine/shard shapes, the 1-shard sequential
/// reference, sequential N-shard, parallel N-shard and `Auto` layouts must
/// agree on the full `RunReport` *and* explicitly on p50/p99/p99.9 read from
/// the machine-total histogram; a speculative-lookahead run must match too,
/// with speculation proven to have actually resolved rounds.
#[test]
fn rpc_tail_latencies_shard_bit_identically() {
    use cni::core::machine::{LookaheadMode, RunReport};
    use cni::sim::stats::{LatencyHistogram, Merge};

    fn tail(report: &RunReport) -> (u64, u64, u64) {
        let hist = LatencyHistogram::merged(report.node_stats.iter().map(|s| s.request_latency));
        (
            hist.quantile_permille(500),
            hist.quantile_permille(990),
            hist.quantile_permille(999),
        )
    }

    let mut rng = DetRng::new(0x59C0_7A11);
    for kind in NiKind::ALL {
        for workload in [Workload::RpcClosed, Workload::RpcOpen] {
            let nodes = 4 + rng.gen_index(7); // 4..=10
            let shards = 2 + rng.gen_index(3); // 2..=4
            let params = WorkloadParams::tiny();
            let case = format!("{kind}/{workload}: {nodes} nodes, {shards} shards");

            let reference = run(
                MachineConfig::isca96(nodes, kind).with_shards(ShardPolicy::Single),
                workload,
                &params,
            );
            assert!(reference.completed, "{case}: reference did not complete");
            let hist =
                LatencyHistogram::merged(reference.node_stats.iter().map(|s| s.request_latency));
            assert!(
                hist.count() > 0,
                "{case}: the run must record request latencies"
            );
            let reference_tail = tail(&reference);

            let layouts: [(&str, MachineConfig); 3] = [
                (
                    "sequential N-shard",
                    MachineConfig::isca96(nodes, kind).with_shards(ShardPolicy::Fixed(shards)),
                ),
                (
                    "parallel N-shard",
                    MachineConfig::isca96(nodes, kind)
                        .with_shards(ShardPolicy::Fixed(shards))
                        .with_parallel(true),
                ),
                (
                    "Auto",
                    MachineConfig::isca96(nodes, kind).with_shards(ShardPolicy::Auto),
                ),
            ];
            for (label, cfg) in layouts {
                let report = run(cfg, workload, &params);
                assert_eq!(report, reference, "{case}: {label} run diverged");
                assert_eq!(
                    tail(&report),
                    reference_tail,
                    "{case}: {label} run changed the latency tail"
                );
            }

            let (speculative, outcome) = run_with_outcome(
                MachineConfig::isca96(nodes, kind)
                    .with_shards(ShardPolicy::Fixed(shards))
                    .with_parallel(true)
                    .with_lookahead(LookaheadMode::Speculative),
                workload,
                &params,
            );
            assert_eq!(speculative, reference, "{case}: speculative run diverged");
            assert_eq!(
                tail(&speculative),
                reference_tail,
                "{case}: speculation changed the latency tail"
            );
            assert!(
                outcome.spec_commits + outcome.spec_rollbacks > 0,
                "{case}: speculation never resolved a round"
            );
        }
    }
}

/// `NodesPerShard` partitions (the "contiguous node group" policy) behave
/// exactly like their `Fixed` equivalents.
#[test]
fn nodes_per_shard_policy_matches_fixed() {
    let params = WorkloadParams::tiny();
    let a = run(
        MachineConfig::isca96(12, NiKind::Cni4).with_shards(ShardPolicy::NodesPerShard(4)),
        Workload::Moldyn,
        &params,
    );
    let b = run(
        MachineConfig::isca96(12, NiKind::Cni4).with_shards(ShardPolicy::Fixed(3)),
        Workload::Moldyn,
        &params,
    );
    assert_eq!(a, b);
}
