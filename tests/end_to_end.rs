//! Cross-crate integration tests: full machines, real NIs, real workloads.

use cni::core::machine::{Machine, MachineConfig};
use cni::core::micro::{round_trip_latency, stream_bandwidth, BandwidthParams, LatencyParams};
use cni::mem::system::DeviceLocation;
use cni::nic::NiKind;
use cni::workloads::{Workload, WorkloadParams};

fn run(workload: Workload, nodes: usize, ni: NiKind, location: DeviceLocation) -> u64 {
    let params = WorkloadParams::tiny();
    let cfg = MachineConfig::for_bus(nodes, ni, location);
    let mut machine = Machine::new(cfg, workload.programs(nodes, &params));
    let report = machine.run();
    assert!(report.completed, "{workload} on {ni} did not complete");
    report.cycles
}

#[test]
fn every_workload_completes_on_every_ni_on_the_memory_bus() {
    for workload in Workload::ALL {
        for ni in NiKind::ALL {
            let cycles = run(workload, 4, ni, DeviceLocation::MemoryBus);
            assert!(cycles > 0);
        }
    }
}

#[test]
fn every_workload_completes_on_the_io_bus() {
    for workload in Workload::ALL {
        for ni in [NiKind::Ni2w, NiKind::Cni512Q] {
            let cycles = run(workload, 4, ni, DeviceLocation::IoBus);
            assert!(cycles > 0);
        }
    }
}

#[test]
fn bulk_workloads_prefer_coherent_nis() {
    // gauss (2 KB broadcasts) and moldyn (1.5 KB reductions) exercise the
    // block-transfer advantage: the CQ-based CNIs must beat NI2w.
    for workload in [Workload::Gauss, Workload::Moldyn] {
        let ni2w = run(workload, 8, NiKind::Ni2w, DeviceLocation::MemoryBus);
        let cni = run(workload, 8, NiKind::Cni16Q, DeviceLocation::MemoryBus);
        assert!(
            cni < ni2w,
            "{workload}: CNI16Q ({cni}) should finish before NI2w ({ni2w})"
        );
    }
}

#[test]
fn io_bus_is_slower_than_memory_bus_for_the_same_ni() {
    let mem = run(
        Workload::Gauss,
        4,
        NiKind::Cni512Q,
        DeviceLocation::MemoryBus,
    );
    let io = run(Workload::Gauss, 4, NiKind::Cni512Q, DeviceLocation::IoBus);
    assert!(
        io > mem,
        "I/O-bus run ({io}) should be slower than memory-bus run ({mem})"
    );
}

#[test]
fn cache_bus_ni2w_is_an_upper_bound_for_microbenchmarks() {
    let params = LatencyParams {
        message_bytes: 64,
        iterations: 8,
    };
    let cache = round_trip_latency(&MachineConfig::isca96_cache_bus(2), &params);
    let memory = round_trip_latency(&MachineConfig::isca96(2, NiKind::Ni2w), &params);
    let io = round_trip_latency(&MachineConfig::isca96_io(2, NiKind::Ni2w), &params);
    assert!(cache.round_trip_cycles < memory.round_trip_cycles);
    assert!(memory.round_trip_cycles < io.round_trip_cycles);
}

#[test]
fn figure6_ordering_cnis_beat_ni2w_on_both_buses() {
    let params = LatencyParams {
        message_bytes: 128,
        iterations: 8,
    };
    for location in [DeviceLocation::MemoryBus, DeviceLocation::IoBus] {
        let ni2w = round_trip_latency(&MachineConfig::for_bus(2, NiKind::Ni2w, location), &params);
        let cniq = round_trip_latency(
            &MachineConfig::for_bus(2, NiKind::Cni512Q, location),
            &params,
        );
        assert!(
            cniq.round_trip_cycles < ni2w.round_trip_cycles,
            "{location:?}: CNI512Q ({}) should beat NI2w ({})",
            cniq.round_trip_cycles,
            ni2w.round_trip_cycles
        );
    }
}

#[test]
fn figure7_ordering_cnis_sustain_more_bandwidth() {
    let params = BandwidthParams {
        message_bytes: 2048,
        messages: 32,
    };
    let ni2w = stream_bandwidth(&MachineConfig::isca96(2, NiKind::Ni2w), &params);
    let cni = stream_bandwidth(&MachineConfig::isca96(2, NiKind::Cni512Q), &params);
    let qm = stream_bandwidth(&MachineConfig::isca96(2, NiKind::Cni16Qm), &params);
    assert!(cni.mbytes_per_sec > ni2w.mbytes_per_sec);
    assert!(qm.mbytes_per_sec > ni2w.mbytes_per_sec);
    // Relative bandwidth is expressed against the two-processor local-queue
    // maximum and must stay in a sane range.
    assert!(cni.relative > 0.0 && cni.relative <= 1.1);
}

#[test]
fn snarfing_does_not_hurt_bandwidth() {
    let params = BandwidthParams {
        message_bytes: 1024,
        messages: 48,
    };
    let base = stream_bandwidth(&MachineConfig::isca96(2, NiKind::Cni16Qm), &params);
    let snarf = stream_bandwidth(
        &MachineConfig::isca96(2, NiKind::Cni16Qm).with_snarfing(),
        &params,
    );
    assert!(
        snarf.mbytes_per_sec >= base.mbytes_per_sec * 0.99,
        "snarfing ({:.1} MB/s) should not fall below the baseline ({:.1} MB/s)",
        snarf.mbytes_per_sec,
        base.mbytes_per_sec
    );
}

#[test]
fn cnis_reduce_memory_bus_occupancy_on_fine_grain_workloads() {
    let params = WorkloadParams::tiny();
    let mut busy = Vec::new();
    for ni in [NiKind::Ni2w, NiKind::Cni512Q] {
        let cfg = MachineConfig::isca96(4, ni);
        let mut machine = Machine::new(cfg, Workload::Spsolve.programs(4, &params));
        let report = machine.run();
        assert!(report.completed);
        busy.push(report.memory_bus_busy as f64 / report.cycles as f64);
    }
    assert!(
        busy[1] < busy[0],
        "CNI512Q occupancy rate ({:.3}) should be below NI2w's ({:.3})",
        busy[1],
        busy[0]
    );
}
