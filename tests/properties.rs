//! Property-based tests of the core data structures and invariants.
//!
//! The build environment has no access to crates.io, so instead of a
//! proptest-style framework these properties run over many randomized cases
//! driven by the simulator's own deterministic RNG ([`DetRng`]): every case
//! derives from a fixed master seed, so a failure reproduces exactly and the
//! failing case's seed appears in the assertion message.

use std::collections::VecDeque;

use cni::core::cq::cachable_queue;
use cni::core::msg::{fragment_message, AmMessage, Assembler};
use cni::net::message::{fragments_for_bytes, NodeId, NET_PAYLOAD_BYTES};
use cni::net::window::SlidingWindow;
use cni::sim::event::{EventQueue, QueueBackend};
use cni::sim::rng::DetRng;

const CASES: u64 = 64;

/// The host cachable queue behaves exactly like a bounded FIFO for any
/// interleaving of sends and receives.
#[test]
fn cachable_queue_matches_a_reference_fifo() {
    for case in 0..CASES {
        let mut rng = DetRng::new(0xA11CE ^ case);
        let capacity = 1 + rng.gen_index(31);
        let ops = 1 + rng.gen_index(500);
        let (mut tx, mut rx) = cachable_queue::<u64>(capacity);
        let mut reference = VecDeque::new();
        let mut next = 0u64;
        for _ in 0..ops {
            if rng.gen_bool(0.5) {
                let ok = tx.try_send(next).is_ok();
                let expected_ok = reference.len() < capacity;
                assert_eq!(ok, expected_ok, "case {case}: try_send admission");
                if ok {
                    reference.push_back(next);
                }
                next += 1;
            } else {
                let got = rx.try_recv();
                let expected = reference.pop_front();
                assert_eq!(got, expected, "case {case}: try_recv order");
            }
        }
        // Drain what is left: order must match the reference exactly.
        while let Some(expected) = reference.pop_front() {
            assert_eq!(rx.try_recv(), Some(expected), "case {case}: drain");
        }
        assert_eq!(rx.try_recv(), None, "case {case}: queue must end empty");
    }
}

/// Fragmentation always covers the full payload with fragments of at most
/// the network payload size, and reassembly completes exactly on the last
/// fragment regardless of arrival order.
#[test]
fn fragmentation_reassembly_round_trip() {
    for case in 0..CASES {
        let mut rng = DetRng::new(0xF4A6 ^ case);
        let bytes = rng.gen_index(10_000);
        let handler = rng.gen_range(u64::from(u16::MAX) + 1) as u16;
        let frags = fragment_message(
            NodeId(3),
            NodeId(1),
            42,
            AmMessage::new(handler, bytes, vec![7]),
        );
        assert_eq!(frags.len(), fragments_for_bytes(bytes), "case {case}");
        assert_eq!(
            frags.iter().map(|f| f.payload_bytes).sum::<usize>(),
            bytes,
            "case {case}: fragments must cover the payload"
        );
        assert!(frags.iter().all(|f| f.payload_bytes <= NET_PAYLOAD_BYTES));

        // Reassemble in a shuffled order.
        let mut order: Vec<usize> = (0..frags.len()).collect();
        rng.shuffle(&mut order);
        let mut assembler = Assembler::new();
        let mut completed = None;
        for (count, &i) in order.iter().enumerate() {
            let result = assembler.push(frags[i].clone());
            if count + 1 < frags.len() {
                assert!(result.is_none(), "case {case}: early completion");
            } else {
                completed = result;
            }
        }
        let msg = completed.expect("last fragment completes the message");
        assert_eq!(msg.handler, handler, "case {case}");
        assert_eq!(msg.bytes, bytes, "case {case}");
        assert_eq!(msg.src, NodeId(3), "case {case}");
    }
}

/// The sliding window never admits more than its limit per destination and
/// always recovers after releases.
#[test]
fn sliding_window_invariants() {
    for case in 0..CASES {
        let mut rng = DetRng::new(0x51D3 ^ case);
        let limit = 1 + rng.gen_index(7);
        let ops = 1 + rng.gen_index(200);
        let mut window = SlidingWindow::new(limit);
        let mut in_flight = [0usize; 4];
        for _ in 0..ops {
            let dst = rng.gen_index(4);
            let node = NodeId(dst);
            if rng.gen_bool(0.5) {
                let ok = window.try_acquire(node);
                assert_eq!(ok, in_flight[dst] < limit, "case {case}: admission");
                if ok {
                    in_flight[dst] += 1;
                }
            } else if in_flight[dst] > 0 {
                window.release(node);
                in_flight[dst] -= 1;
            }
            assert!(window.in_flight(node) <= limit, "case {case}: over limit");
            assert_eq!(window.in_flight(node), in_flight[dst], "case {case}");
        }
        assert_eq!(
            window.total_in_flight(),
            in_flight.iter().sum::<usize>(),
            "case {case}"
        );
    }
}

/// The event queue always pops events in non-decreasing time order and
/// preserves FIFO order among same-cycle events — on both backends.
#[test]
fn event_queue_ordering() {
    for backend in [QueueBackend::BinaryHeap, QueueBackend::TimingWheel] {
        for case in 0..CASES {
            let mut rng = DetRng::new(0xE7E2 ^ case);
            let n = 1 + rng.gen_index(200);
            let mut q = EventQueue::with_backend(backend);
            for i in 0..n {
                let t = rng.gen_range(1000);
                q.schedule(t, (t, i));
            }
            let mut last: Option<(u64, usize)> = None;
            let mut popped = 0;
            while let Some((at, (t, i))) = q.pop() {
                popped += 1;
                assert_eq!(at, t, "{backend} case {case}: clock vs event time");
                if let Some((lt, li)) = last {
                    assert!(
                        t > lt || (t == lt && i > li),
                        "{backend} case {case}: ordering violated at ({t},{i}) after ({lt},{li})"
                    );
                }
                last = Some((t, i));
            }
            assert_eq!(popped, n, "{backend} case {case}: events lost");
        }
    }
}

/// The timing-wheel backend pops events in *exactly* the same order as the
/// binary-heap backend under randomized schedules, including same-cycle FIFO
/// ties and interleaved schedule/pop churn that forces wheel cascades.
#[test]
fn wheel_and_heap_backends_are_pop_order_identical() {
    for case in 0..CASES {
        let mut rng = DetRng::new(0x9E37 ^ case);
        let mut heap = EventQueue::with_backend(QueueBackend::BinaryHeap);
        let mut wheel = EventQueue::with_backend(QueueBackend::TimingWheel);
        let mut next_id = 0u64;
        let ops = 200 + rng.gen_index(800);
        for _ in 0..ops {
            if rng.gen_bool(0.55) || heap.is_empty() {
                // Mix short offsets (same-cycle ties, level-0 traffic) with
                // occasional far-future events (higher wheel levels).
                let delta = match rng.gen_index(10) {
                    0 => rng.gen_range(1 << 20),
                    1..=3 => rng.gen_range(5_000),
                    _ => rng.gen_range(8),
                };
                let at = heap.now() + delta;
                heap.schedule(at, next_id);
                wheel.schedule(at, next_id);
                next_id += 1;
            } else {
                let (h, w) = (heap.pop(), wheel.pop());
                assert_eq!(h, w, "case {case}: backends diverged mid-churn");
            }
            assert_eq!(heap.len(), wheel.len(), "case {case}: length divergence");
            assert_eq!(heap.now(), wheel.now(), "case {case}: clock divergence");
            // The adaptive-lookahead forecast peeks at the queue through
            // `next_occupied`; it must be exact (not a lower bound) and
            // backend-independent, since epoch planning places its result
            // on the epoch grid.
            assert_eq!(
                heap.next_occupied(),
                wheel.next_occupied(),
                "case {case}: next_occupied divergence"
            );
        }
        // Drain: the full remaining sequence must match exactly.
        loop {
            let (h, w) = (heap.pop(), wheel.pop());
            assert_eq!(h, w, "case {case}: backends diverged while draining");
            if h.is_none() {
                break;
            }
        }
    }
}

/// Deterministic RNG: same seed, same stream; bounded values stay in range.
#[test]
fn det_rng_is_deterministic_and_bounded() {
    for case in 0..CASES {
        let seed = DetRng::new(case).next_u64();
        let bound = 1 + DetRng::new(!case).gen_range(10_000);
        let mut a = DetRng::new(seed);
        let mut b = DetRng::new(seed);
        for _ in 0..100 {
            let x = a.gen_range(bound);
            assert_eq!(x, b.gen_range(bound), "case {case}");
            assert!(x < bound, "case {case}");
        }
    }
}

/// Epoch-planner schedule pins: for one known grinding schedule — appbt's
/// compute phases between sparse exchanges on a fixed 6-node, 2-shard
/// machine — the exact [`EpochOutcome`] of all three lookahead modes is
/// pinned, the machine-level analog of the sharded driver's grinding-ring
/// unit pins. Results stay bit-identical across modes (invariants 6 and 7);
/// what this pins is the *planner's* behaviour, so an accidental change to
/// horizon planning, extension accounting or the speculation pacer shows up
/// as a schedule diff even though every result digest still matches.
///
/// The adaptive line equals the fixed grid here: dense zero-fault traffic
/// keeps every pending event a potential emitter, so the conservative
/// forecast never clears a grid slot (see the lookahead campaign notes in
/// `RESULTS.md`). Speculation is the mode built to beat exactly that —
/// it gambles past the horizon and validates afterwards, committing most
/// rounds and paying for the rest with re-executed cycles.
///
/// The speculative line pins the PR 9 observable-driven pacer (commit
/// ratio, staged-plus-pending load, mean epoch length): any change to its
/// decision function moves this exact gamble/commit/rollback/depth
/// sequence, in both drivers, and fails loudly here.
#[test]
fn lookahead_epoch_schedules_are_pinned() {
    use cni::core::machine::{EpochOutcome, LookaheadMode, Machine, MachineConfig, ShardPolicy};
    use cni::nic::NiKind;
    use cni::workloads::{Workload, WorkloadParams};

    let params = WorkloadParams::tiny();
    let grid: u64 = 100; // network_latency × the 10-cycle net clock divider
    let expected = [
        (
            LookaheadMode::Fixed,
            EpochOutcome {
                epochs: 33,
                exchanges: 18,
                routed_events: 92,
                aborted: false,
                last_horizon: 5_100,
                extensions: 0,
                epoch_cycles: 33 * grid,
                max_epoch_len: grid,
                spec_commits: 0,
                spec_rollbacks: 0,
                spec_reexec_cycles: 0,
                spec_max_depth: 0,
            },
        ),
        (
            LookaheadMode::Adaptive,
            EpochOutcome {
                epochs: 33,
                exchanges: 18,
                routed_events: 92,
                aborted: false,
                last_horizon: 5_100,
                extensions: 0,
                epoch_cycles: 33 * grid,
                max_epoch_len: grid,
                spec_commits: 0,
                spec_rollbacks: 0,
                spec_reexec_cycles: 0,
                spec_max_depth: 0,
            },
        ),
        (
            LookaheadMode::Speculative,
            EpochOutcome {
                epochs: 27,
                exchanges: 17,
                routed_events: 92,
                aborted: false,
                last_horizon: 5_100,
                extensions: 7,
                epoch_cycles: 4_600,
                max_epoch_len: 5 * grid,
                spec_commits: 6,
                spec_rollbacks: 4,
                spec_reexec_cycles: 700,
                spec_max_depth: 4,
            },
        ),
    ];

    let mut reports = Vec::new();
    for (mode, want) in expected {
        for parallel in [false, true] {
            let cfg = MachineConfig::isca96(6, NiKind::Cni16Qm)
                .with_shards(ShardPolicy::Fixed(2))
                .with_parallel(parallel)
                .with_lookahead(mode);
            let mut machine =
                Machine::new(cfg.clone(), Workload::Appbt.programs(cfg.nodes, &params));
            let report = machine.run();
            assert!(report.completed, "{mode} (parallel = {parallel})");
            let outcome = *machine.epoch_outcome().expect("outcome recorded");
            assert_eq!(
                outcome, want,
                "{mode} (parallel = {parallel}): the pinned epoch schedule moved"
            );
            reports.push(report);
        }
        // Derived pin: speculation grows the mean epoch length (cycles per
        // epoch) past the fixed grid; the conservative modes sit exactly on
        // it.
        let mean_num = want.epoch_cycles;
        let mean_den = want.epochs;
        match mode {
            LookaheadMode::Speculative => assert!(mean_num > grid * mean_den),
            _ => assert_eq!(mean_num, grid * mean_den),
        }
    }
    for report in &reports[1..] {
        assert_eq!(
            *report, reports[0],
            "lookahead modes must stay bit-identical in results"
        );
    }
}

/// Incremental checkpoints are strictly cheaper than full clones on the
/// same speculative run, and the post-commit trim keeps the event-queue
/// delta journal's capacity bounded. Guards two regressions at once:
/// (a) the dirty tracker silently degrading to copy-everything (the dirty
/// fraction and peak bytes would jump back to the full-clone line), and
/// (b) checkpoint buffers never shrinking after a large speculative phase.
#[test]
fn incremental_checkpoints_stay_cheaper_than_full_clones() {
    use cni::core::machine::{
        CheckpointStrategy, LookaheadMode, Machine, MachineConfig, ShardPolicy,
    };
    use cni::nic::NiKind;
    use cni::sim::event::DELTA_TRIM_ENTRIES;
    use cni::workloads::{Workload, WorkloadParams};

    let params = WorkloadParams::tiny();
    let run = |strategy: CheckpointStrategy| {
        let cfg = MachineConfig::isca96(6, NiKind::Cni16Qm)
            .with_shards(ShardPolicy::Fixed(2))
            .with_lookahead(LookaheadMode::Speculative)
            .with_checkpoint(strategy);
        let mut machine = Machine::new(cfg.clone(), Workload::Appbt.programs(cfg.nodes, &params));
        let report = machine.run();
        assert!(report.completed, "{strategy:?}: run did not complete");
        (report, machine.checkpoint_stats())
    };

    let (full_report, full) = run(CheckpointStrategy::Full);
    let (incr_report, incr) = run(CheckpointStrategy::Incremental);
    assert_eq!(
        incr_report, full_report,
        "checkpoint strategy must be invisible in results"
    );

    assert!(full.snapshots > 0, "the fixture must actually speculate");
    assert_eq!(
        incr.snapshots, full.snapshots,
        "strategy must not change the gamble schedule"
    );
    // Full clones copy every node every snapshot; dirty tracking must not.
    assert_eq!(full.dirty_fraction(), 1.0);
    assert!(
        incr.dirty_fraction() < 1.0,
        "dirty tracking degraded to copy-everything: fraction {}",
        incr.dirty_fraction()
    );
    assert!(
        incr.bytes < full.bytes && incr.peak_bytes < full.peak_bytes,
        "incremental snapshots must capture strictly fewer bytes \
         ({} total / {} peak vs full's {} / {})",
        incr.bytes,
        incr.peak_bytes,
        full.bytes,
        full.peak_bytes
    );
    // The post-commit trim caps the delta journal's retained capacity.
    assert!(
        incr.journal_capacity <= DELTA_TRIM_ENTRIES as u64,
        "delta journal capacity {} escaped the {DELTA_TRIM_ENTRIES}-entry trim",
        incr.journal_capacity
    );
    assert_eq!(
        full.journal_capacity, 0,
        "the full strategy must not touch the delta journal"
    );
}

/// Zero-rate transparency: with every fault rate at 0.0 (the default), the
/// reliable-delivery protocol is structurally absent and the machine takes
/// its historical code path byte for byte. Pinned two ways: (a) the
/// committed `SCALING_ref.txt` reference digests — produced before the
/// fault layer existed — are recomputed here for two workloads and must
/// still match; (b) an *explicitly* attached all-zero fault config (even
/// with protocol knobs flipped) produces a bit-identical [`RunReport`].
#[test]
fn zero_fault_rates_leave_reports_byte_identical_to_seed() {
    use cni::core::machine::{Machine, MachineConfig};
    use cni::net::faults::FaultConfig;
    use cni::nic::NiKind;
    use cni::workloads::{Workload, WorkloadParams};
    use cni_bench::report_digest;

    let reference: std::collections::HashMap<&str, &str> = include_str!("../SCALING_ref.txt")
        .lines()
        .filter_map(|line| {
            let mut parts = line.split_whitespace();
            let tag = parts.next()?;
            (tag == "scaling-digest").then_some(())?;
            Some((parts.next()?, parts.nth(1)?))
        })
        .collect();
    assert!(
        reference.len() >= 5,
        "SCALING_ref.txt should pin at least the five CI workloads"
    );

    let nodes = 64;
    // The two cheapest lines of the `scaling --ci` sweep, with the exact
    // weak-scaled quick inputs the scaling binary uses.
    for workload in [Workload::Em3d, Workload::Hotspot] {
        let mut params = WorkloadParams::tiny();
        match workload {
            Workload::Em3d => {
                params.em3d.graph_nodes = nodes * 8;
                params.em3d.degree = 5;
                params.em3d.iterations = 4;
            }
            Workload::Hotspot => params.hotspot.phases = 3,
            _ => unreachable!(),
        }
        let run = |cfg: MachineConfig| {
            Machine::new(cfg.clone(), workload.programs(cfg.nodes, &params)).run()
        };

        let default_cfg = MachineConfig::isca96(nodes, NiKind::Cni512Q);
        assert!(
            default_cfg.faults.is_zero(),
            "the default configuration must carry zero fault rates"
        );
        let report = run(default_cfg.clone());
        assert!(
            report.completed,
            "{workload}: reference run did not complete"
        );
        let digest = format!("{:016x}", report_digest(&report));
        let key = workload.to_string();
        assert_eq!(
            Some(digest.as_str()),
            reference.get(key.as_str()).copied(),
            "{workload}: the zero-rate digest must stay byte-identical to the \
             committed SCALING_ref.txt line from before the fault layer existed"
        );

        // An explicit zero-rate config — protocol knobs flipped, rates all
        // zero — is still fully transparent.
        let explicit = run(default_cfg.with_faults(FaultConfig {
            retransmit: false,
            rto_cycles: 17,
            ..FaultConfig::default()
        }));
        assert_eq!(
            explicit, report,
            "{workload}: an all-zero fault config must be a structural no-op"
        );
    }
}
