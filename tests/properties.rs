//! Property-based tests of the core data structures and invariants.

use proptest::prelude::*;

use cni::core::cq::cachable_queue;
use cni::core::msg::{fragment_message, AmMessage, Assembler};
use cni::net::message::{fragments_for_bytes, NodeId, NET_PAYLOAD_BYTES};
use cni::net::window::SlidingWindow;
use cni::sim::event::EventQueue;
use cni::sim::rng::DetRng;

proptest! {
    /// The host cachable queue behaves exactly like a bounded FIFO for any
    /// interleaving of sends and receives.
    #[test]
    fn cachable_queue_matches_a_reference_fifo(
        capacity in 1usize..32,
        ops in proptest::collection::vec(any::<bool>(), 1..500),
    ) {
        let (mut tx, mut rx) = cachable_queue::<u64>(capacity);
        let mut reference = std::collections::VecDeque::new();
        let mut next = 0u64;
        for is_send in ops {
            if is_send {
                let ok = tx.try_send(next).is_ok();
                let expected_ok = reference.len() < capacity;
                prop_assert_eq!(ok, expected_ok);
                if ok {
                    reference.push_back(next);
                }
                next += 1;
            } else {
                let got = rx.try_recv();
                let expected = reference.pop_front();
                prop_assert_eq!(got, expected);
            }
        }
        // Drain what is left: order must match the reference exactly.
        while let Some(expected) = reference.pop_front() {
            prop_assert_eq!(rx.try_recv(), Some(expected));
        }
        prop_assert_eq!(rx.try_recv(), None);
    }

    /// Fragmentation always covers the full payload with fragments of at most
    /// the network payload size, and reassembly completes exactly on the last
    /// fragment regardless of arrival order.
    #[test]
    fn fragmentation_reassembly_round_trip(
        bytes in 0usize..10_000,
        handler in any::<u16>(),
        shuffle_seed in any::<u64>(),
    ) {
        let frags = fragment_message(NodeId(3), NodeId(1), 42, AmMessage::new(handler, bytes, vec![7]));
        prop_assert_eq!(frags.len(), fragments_for_bytes(bytes));
        prop_assert_eq!(frags.iter().map(|f| f.payload_bytes).sum::<usize>(), bytes);
        prop_assert!(frags.iter().all(|f| f.payload_bytes <= NET_PAYLOAD_BYTES));

        // Reassemble in a shuffled order.
        let mut order: Vec<usize> = (0..frags.len()).collect();
        DetRng::new(shuffle_seed).shuffle(&mut order);
        let mut assembler = Assembler::new();
        let mut completed = None;
        for (count, &i) in order.iter().enumerate() {
            let result = assembler.push(frags[i].clone());
            if count + 1 < frags.len() {
                prop_assert!(result.is_none());
            } else {
                completed = result;
            }
        }
        let msg = completed.expect("last fragment completes the message");
        prop_assert_eq!(msg.handler, handler);
        prop_assert_eq!(msg.bytes, bytes);
        prop_assert_eq!(msg.src, NodeId(3));
    }

    /// The sliding window never admits more than its limit per destination
    /// and always recovers after releases.
    #[test]
    fn sliding_window_invariants(
        limit in 1usize..8,
        ops in proptest::collection::vec((0usize..4, any::<bool>()), 1..200),
    ) {
        let mut window = SlidingWindow::new(limit);
        let mut in_flight = vec![0usize; 4];
        for (dst, acquire) in ops {
            let node = NodeId(dst);
            if acquire {
                let ok = window.try_acquire(node);
                prop_assert_eq!(ok, in_flight[dst] < limit);
                if ok {
                    in_flight[dst] += 1;
                }
            } else if in_flight[dst] > 0 {
                window.release(node);
                in_flight[dst] -= 1;
            }
            prop_assert!(window.in_flight(node) <= limit);
            prop_assert_eq!(window.in_flight(node), in_flight[dst]);
        }
        prop_assert_eq!(window.total_in_flight(), in_flight.iter().sum::<usize>());
    }

    /// The event queue always pops events in non-decreasing time order and
    /// preserves FIFO order among same-cycle events.
    #[test]
    fn event_queue_ordering(
        times in proptest::collection::vec(0u64..1000, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, (t, i));
        }
        let mut last: Option<(u64, usize)> = None;
        let mut popped = 0;
        while let Some((at, (t, i))) = q.pop() {
            popped += 1;
            prop_assert_eq!(at, t);
            if let Some((lt, li)) = last {
                prop_assert!(t > lt || (t == lt && i > li), "ordering violated");
            }
            last = Some((t, i));
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Deterministic RNG: same seed, same stream; bounded values stay in
    /// range.
    #[test]
    fn det_rng_is_deterministic_and_bounded(seed in any::<u64>(), bound in 1u64..10_000) {
        let mut a = DetRng::new(seed);
        let mut b = DetRng::new(seed);
        for _ in 0..100 {
            let x = a.gen_range(bound);
            prop_assert_eq!(x, b.gen_range(bound));
            prop_assert!(x < bound);
        }
    }
}
