//! Differential harness for speculative epoch execution (determinism
//! invariant 7): speculation — commit *or* rollback — must be unobservable
//! in results.
//!
//! The correctness oracle is the repo's existing bit-identity machinery:
//! every case compares full [`RunReport`]s (the same comparison
//! `tests/sharding.rs` uses) *and* the [`report_digest`] fingerprint the
//! scaling harness pins in `SCALING_ref.txt`, across three lookahead
//! policies — the fixed-grid single-shard reference, an adaptive run and
//! speculative runs on both epoch drivers (sequential and the persistent
//! worker pool). If a rollback ever restored less than the full pre-gamble
//! state, or a commit ever differed from the conservative re-execution it
//! replaced, the digests diverge.
//!
//! Cases are drawn from a master seed in the house style of
//! `tests/properties.rs`, with two environment knobs for CI's fuzz step:
//!
//! - `SPEC_SEED=<hex-or-decimal>` overrides the master seed (CI passes a
//!   randomized value and echoes it to the job log);
//! - `SPEC_FUZZ_MS=<millis>` turns the fixed batch into a time-boxed fuzz
//!   loop that keeps drawing fresh cases until the budget is spent.
//!
//! Every assertion message carries the master seed and a one-line repro
//! command, so any failure — fuzzed or not — reproduces exactly.

use std::time::{Duration, Instant};

use cni::core::machine::{
    CheckpointStrategy, EpochOutcome, LookaheadMode, Machine, MachineConfig, RunReport,
    ShardPolicy, SpecTuning,
};
use cni::net::faults::FaultConfig;
use cni::nic::NiKind;
use cni::sim::rng::DetRng;
use cni::workloads::{Workload, WorkloadParams};
use cni_bench::report_digest;

/// Master seed used when `SPEC_SEED` is not set. The default batch is part
/// of the deterministic test suite, so this value is as pinned as any other
/// seed in the repo.
const DEFAULT_SEED: u64 = 0x5bec_0597_ec1a_7e08;

/// Cases per NI kind in the fixed batch (ignored under `SPEC_FUZZ_MS`).
const CASES_PER_KIND: usize = 2;

/// Resolves the master seed: `SPEC_SEED` (hex with `0x` prefix, or
/// decimal; underscores allowed) or the pinned default.
fn master_seed() -> u64 {
    match std::env::var("SPEC_SEED") {
        Ok(raw) => parse_seed(&raw)
            .unwrap_or_else(|| panic!("SPEC_SEED={raw:?} is not a hex or decimal u64")),
        Err(_) => DEFAULT_SEED,
    }
}

fn parse_seed(raw: &str) -> Option<u64> {
    let s: String = raw.trim().chars().filter(|&c| c != '_').collect();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Optional time box: `SPEC_FUZZ_MS` in milliseconds.
fn fuzz_budget() -> Option<Duration> {
    let raw = std::env::var("SPEC_FUZZ_MS").ok()?;
    let ms: u64 = raw
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("SPEC_FUZZ_MS={raw:?} is not a u64 millisecond count"));
    Some(Duration::from_millis(ms))
}

/// One randomized configuration of the differential matrix.
#[derive(Debug)]
struct Case {
    workload: Workload,
    kind: NiKind,
    nodes: usize,
    shards: usize,
    faults: Option<FaultConfig>,
    /// Randomized pacer observable thresholds: every case exercises a
    /// different refuse/deepen/give-up regime, and the schedule must still
    /// be identical across drivers and checkpoint strategies.
    tuning: SpecTuning,
}

/// Workload pool: the paper macrobenchmarks with distinct communication
/// patterns plus one synthetic convergence pattern, all cheap at tiny size.
const WORKLOADS: [Workload; 6] = [
    Workload::Em3d,
    Workload::Gauss,
    Workload::Spsolve,
    Workload::Barnes,
    Workload::Dsmc,
    Workload::Hotspot,
];

impl Case {
    /// Draws a case. Fault rates include zero (clean speculation) and two
    /// lossy mixes that force retransmission traffic into the gambled
    /// horizon, so rollback paths are exercised alongside commits.
    fn draw(rng: &mut DetRng, kind: NiKind) -> Case {
        let workload = WORKLOADS[rng.gen_index(WORKLOADS.len())];
        let nodes = 4 + rng.gen_index(7); // 4..=10
        let shards = 1 + rng.gen_index(4); // 1..=4
        let faults = match rng.gen_index(3) {
            0 => None,
            1 => Some(FaultConfig {
                seed: rng.next_u64(),
                drop_ppm: 80_000,
                corrupt_ppm: 60_000,
                duplicate_ppm: 60_000,
                delay_ppm: 60_000,
                ..FaultConfig::default()
            }),
            _ => Some(FaultConfig {
                seed: rng.next_u64(),
                drop_ppm: 200_000,
                ..FaultConfig::default()
            }),
        };
        let depth = 1 + rng.gen_index(6) as u64;
        let tuning = SpecTuning {
            depth,
            depth_max: depth * (1 + rng.gen_index(8) as u64),
            dense_staged: [32, 256, 2_048][rng.gen_index(3)],
            give_up_rollbacks: 2 + rng.gen_index(7) as u64,
            penalty_cap: 1 << (2 + rng.gen_index(5)),
        };
        Case {
            workload,
            kind,
            nodes,
            shards,
            faults,
            tuning,
        }
    }

    fn config(&self) -> MachineConfig {
        let cfg = MachineConfig::isca96(self.nodes, self.kind).with_pacer(self.tuning);
        match &self.faults {
            Some(f) => cfg.with_faults(f.clone()),
            None => cfg,
        }
    }

    fn describe(&self) -> String {
        let faults = match &self.faults {
            Some(f) => format!("faults(seed {:#x}, drop {} ppm)", f.seed, f.drop_ppm),
            None => "no faults".to_string(),
        };
        format!(
            "{}/{}: {} nodes, {} shards, {}, pacer {:?}",
            self.kind, self.workload, self.nodes, self.shards, faults, self.tuning
        )
    }
}

/// Runs one machine and returns its report plus the epoch driver's outcome.
fn run(
    cfg: MachineConfig,
    workload: Workload,
    params: &WorkloadParams,
) -> (RunReport, EpochOutcome) {
    let programs = workload.programs(cfg.nodes, params);
    let mut machine = Machine::new(cfg, programs);
    let report = machine.run();
    let outcome = *machine
        .epoch_outcome()
        .expect("run() always records an epoch outcome");
    (report, outcome)
}

/// Executes one differential case; returns the speculative outcome totals
/// (sequential driver) for the non-vacuity tally.
fn check_case(case: &Case, seed: u64, index: usize) -> EpochOutcome {
    let params = WorkloadParams::tiny();
    // The one-line repro: re-running the test with the printed seed regrows
    // the identical case sequence, including this case at this index.
    let repro = format!(
        "repro: SPEC_SEED={seed:#x} cargo test --test speculation -- differential (case #{index}: {})",
        case.describe()
    );

    let (reference, _) = run(
        case.config()
            .with_shards(ShardPolicy::Single)
            .with_lookahead(LookaheadMode::Fixed),
        case.workload,
        &params,
    );
    assert!(reference.completed, "{repro}: reference did not complete");
    let want = report_digest(&reference);

    let (adaptive, _) = run(
        case.config()
            .with_shards(ShardPolicy::Fixed(case.shards))
            .with_lookahead(LookaheadMode::Adaptive),
        case.workload,
        &params,
    );
    assert_eq!(adaptive, reference, "{repro}: adaptive run diverged");
    assert_eq!(
        report_digest(&adaptive),
        want,
        "{repro}: adaptive digest diverged"
    );

    let mut spec_outcome = None;
    for strategy in [CheckpointStrategy::Full, CheckpointStrategy::Incremental] {
        for parallel in [false, true] {
            let (speculative, outcome) = run(
                case.config()
                    .with_shards(ShardPolicy::Fixed(case.shards))
                    .with_parallel(parallel)
                    .with_lookahead(LookaheadMode::Speculative)
                    .with_checkpoint(strategy),
                case.workload,
                &params,
            );
            assert_eq!(
                speculative, reference,
                "{repro}: speculative run ({strategy:?}, parallel = {parallel}) diverged"
            );
            assert_eq!(
                report_digest(&speculative),
                want,
                "{repro}: speculative digest ({strategy:?}, parallel = {parallel}) diverged"
            );
            // The gamble/commit/rollback schedule is deterministic,
            // driver-invariant *and* checkpoint-strategy-invariant (how a
            // snapshot is stored cannot leak into what the pacer sees), so
            // all four speculative runs must agree on it exactly.
            match spec_outcome {
                None => spec_outcome = Some(outcome),
                Some(first) => assert_eq!(
                    outcome, first,
                    "{repro}: drivers/strategies disagreed on the speculation \
                     schedule ({strategy:?}, parallel = {parallel})"
                ),
            }
        }
    }
    spec_outcome.expect("the speculative matrix ran")
}

/// The differential matrix. In the default batch mode this runs
/// `CASES_PER_KIND` randomized cases for every NI kind; under
/// `SPEC_FUZZ_MS` it keeps drawing cases round-robin across NI kinds until
/// the time budget is spent.
#[test]
fn differential_speculation_is_unobservable() {
    let seed = master_seed();
    let mut rng = DetRng::new(seed);
    let mut commits = 0u64;
    let mut rollbacks = 0u64;
    let mut cases = 0usize;

    if let Some(budget) = fuzz_budget() {
        let start = Instant::now();
        // Always complete at least one full NI sweep, even on a tiny budget.
        loop {
            for kind in NiKind::ALL {
                let case = Case::draw(&mut rng, kind);
                let outcome = check_case(&case, seed, cases);
                commits += outcome.spec_commits;
                rollbacks += outcome.spec_rollbacks;
                cases += 1;
            }
            if start.elapsed() >= budget {
                break;
            }
        }
        println!(
            "spec-fuzz: seed {seed:#x}, {cases} cases in {:?} \
             ({commits} commits, {rollbacks} rollbacks)",
            start.elapsed()
        );
    } else {
        for kind in NiKind::ALL {
            for _ in 0..CASES_PER_KIND {
                let case = Case::draw(&mut rng, kind);
                let outcome = check_case(&case, seed, cases);
                commits += outcome.spec_commits;
                rollbacks += outcome.spec_rollbacks;
                cases += 1;
            }
        }
    }

    // Non-vacuity: the matrix must exercise both resolution paths. Any
    // healthy batch speculates every first round, and the lossy mixes force
    // conflicts; a batch with zero commits or zero rollbacks means the
    // speculative path silently stopped running.
    assert!(
        commits > 0,
        "seed {seed:#x}: no case committed a speculative round ({cases} cases)"
    );
    assert!(
        rollbacks > 0,
        "seed {seed:#x}: no case rolled a speculative round back ({cases} cases)"
    );
}

/// Mutation-style check that the oracle has teeth for *incremental*
/// restores, not just full-clone ones: two deliberately broken checkpoint
/// strategies — [`CheckpointStrategy::SkipNodeRestore`] leaves the first
/// dirtied node un-rewound on every rollback, and
/// [`CheckpointStrategy::SkipQueueDelta`] drops one journaled event from
/// every queue rewind — must each be caught, either by this harness's own
/// report/digest comparison or by an internal invariant panicking mid-run.
/// A control run with the honest incremental strategy on the same fixture
/// must match the reference bit for bit *and* actually roll back, so the
/// sabotage targets a path the fixture provably executes.
#[test]
fn sabotaged_incremental_restores_are_caught_by_the_oracle() {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let params = WorkloadParams::tiny();
    // The appbt grinding fixture from `tests/properties.rs`: its pinned
    // speculative schedule commits and rolls back under the default pacer.
    let speculative = |strategy: CheckpointStrategy| {
        MachineConfig::isca96(6, NiKind::Cni16Qm)
            .with_shards(ShardPolicy::Fixed(2))
            .with_lookahead(LookaheadMode::Speculative)
            .with_checkpoint(strategy)
    };

    let (reference, _) = run(
        MachineConfig::isca96(6, NiKind::Cni16Qm)
            .with_shards(ShardPolicy::Single)
            .with_lookahead(LookaheadMode::Fixed),
        Workload::Appbt,
        &params,
    );
    assert!(reference.completed);
    let want = report_digest(&reference);

    let (honest, outcome) = run(
        speculative(CheckpointStrategy::Incremental),
        Workload::Appbt,
        &params,
    );
    assert_eq!(honest, reference, "control: honest incremental diverged");
    assert_eq!(report_digest(&honest), want);
    assert!(
        outcome.spec_rollbacks > 0,
        "control: the fixture must roll back, or the sabotages below are vacuous"
    );

    for sabotage in [
        CheckpointStrategy::SkipNodeRestore,
        CheckpointStrategy::SkipQueueDelta,
    ] {
        // A sabotaged run may legitimately panic on an internal invariant
        // (e.g. the emitter census) before it ever produces a report;
        // silence the hook so the expected panic does not spam the log.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run(speculative(sabotage), Workload::Appbt, &params).0
        }));
        std::panic::set_hook(hook);
        let caught = match outcome {
            Err(_) => true,
            Ok(report) => report != reference || report_digest(&report) != want,
        };
        assert!(
            caught,
            "{sabotage:?}: the differential oracle failed to notice a \
             sabotaged incremental restore"
        );
    }
}

/// Seed parsing accepts the formats CI and humans actually type.
#[test]
fn seed_parsing_formats() {
    assert_eq!(parse_seed("0x10"), Some(16));
    assert_eq!(parse_seed("0X10"), Some(16));
    assert_eq!(parse_seed("42"), Some(42));
    assert_eq!(parse_seed(" 0xdead_beef "), Some(0xdead_beef));
    assert_eq!(parse_seed("1_000"), Some(1000));
    assert_eq!(parse_seed("zebra"), None);
    assert_eq!(parse_seed(""), None);
}
