//! Facade crate for the coherent network interface (CNI) reproduction.
//!
//! This crate re-exports the workspace crates so that examples, integration
//! tests and downstream users can depend on a single package:
//!
//! * [`sim`] — discrete-event simulation engine.
//! * [`mem`] — MOESI caches, buses, bridge and memory timing.
//! * [`net`] — network fabric and sliding-window flow control.
//! * [`nic`] — the five network-interface device models and the taxonomy.
//! * [`core`] — cachable queues / device registers, the machine model and the
//!   user-level messaging layer.
//! * [`workloads`] — the five macrobenchmarks of the paper.
//!
//! # Quick start
//!
//! The doctested example below is `examples/quickstart.rs` in miniature —
//! `cargo test -q` runs it, so the public API surface it exercises cannot
//! rot. It compares one coherent NI against the conventional uncached
//! `NI2w` on the paper's two microbenchmarks (Figures 6 and 7): coherent
//! NIs move whole 64-byte cache blocks per bus transaction and poll in the
//! cache, so they win on both metrics (§5.1).
//!
//! ```
//! use cni::core::machine::MachineConfig;
//! use cni::core::micro::{
//!     round_trip_latency, stream_bandwidth, BandwidthParams, LatencyParams,
//! };
//! use cni::nic::NiKind;
//!
//! let latency = LatencyParams { message_bytes: 64, iterations: 8 };
//! let bandwidth = BandwidthParams { message_bytes: 2048, messages: 16 };
//!
//! let ni2w = MachineConfig::isca96(2, NiKind::Ni2w);
//! let cni = MachineConfig::isca96(2, NiKind::Cni512Q);
//!
//! let ni2w_lat = round_trip_latency(&ni2w, &latency);
//! let cni_lat = round_trip_latency(&cni, &latency);
//! assert!(cni_lat.round_trip_micros < ni2w_lat.round_trip_micros);
//!
//! let ni2w_bw = stream_bandwidth(&ni2w, &bandwidth);
//! let cni_bw = stream_bandwidth(&cni, &bandwidth);
//! assert!(cni_bw.mbytes_per_sec > ni2w_bw.mbytes_per_sec);
//! ```
//!
//! Full machine runs drive one [`core::machine::Program`] per node through
//! the discrete-event loop; [`core::machine::ShardPolicy::Auto`] picks the
//! fastest execution layout for the host without changing a single
//! simulated number:
//!
//! ```
//! use cni::core::machine::{Machine, MachineConfig, ShardPolicy};
//! use cni::nic::NiKind;
//! use cni::workloads::{Workload, WorkloadParams};
//!
//! let params = WorkloadParams::tiny();
//! let programs = Workload::Spsolve.programs(4, &params);
//! let cfg = MachineConfig::isca96(4, NiKind::Cni16Qm).with_shards(ShardPolicy::Auto);
//! let report = Machine::new(cfg, programs).run();
//! assert!(report.completed);
//! assert!(report.fabric.messages > 0);
//!
//! // Sharding is a simulator-performance knob, never a results knob.
//! let single = Machine::new(
//!     MachineConfig::isca96(4, NiKind::Cni16Qm),
//!     Workload::Spsolve.programs(4, &params),
//! )
//! .run();
//! assert_eq!(report, single);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cni_core as core;
pub use cni_mem as mem;
pub use cni_net as net;
pub use cni_nic as nic;
pub use cni_sim as sim;
pub use cni_workloads as workloads;
