//! Facade crate for the coherent network interface (CNI) reproduction.
//!
//! This crate re-exports the workspace crates so that examples, integration
//! tests and downstream users can depend on a single package:
//!
//! * [`sim`] — discrete-event simulation engine.
//! * [`mem`] — MOESI caches, buses, bridge and memory timing.
//! * [`net`] — network fabric and sliding-window flow control.
//! * [`nic`] — the five network-interface device models and the taxonomy.
//! * [`core`] — cachable queues / device registers, the machine model and the
//!   user-level messaging layer.
//! * [`workloads`] — the five macrobenchmarks of the paper.
//!
//! # Quick start
//!
//! ```
//! use cni::core::machine::MachineConfig;
//! use cni::core::micro::{round_trip_latency, LatencyParams};
//! use cni::nic::NiKind;
//!
//! let cfg = MachineConfig::isca96(2, NiKind::Cni16Qm);
//! let report = round_trip_latency(&cfg, &LatencyParams { message_bytes: 64, iterations: 8 });
//! assert!(report.round_trip_cycles > 0);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cni_core as core;
pub use cni_mem as mem;
pub use cni_net as net;
pub use cni_nic as nic;
pub use cni_sim as sim;
pub use cni_workloads as workloads;
