//! NI shoot-out: sweep message sizes on both the memory bus and the coherent
//! I/O bus for every network interface the paper evaluates, printing the same
//! latency series as Figure 6(a) and 6(b).
//!
//! Run with `cargo run --release --example ni_shootout`.

use cni::core::machine::MachineConfig;
use cni::core::micro::{round_trip_latency, LatencyParams};
use cni::mem::system::DeviceLocation;
use cni::nic::NiKind;

fn sweep(location: DeviceLocation, label: &str) {
    let sizes = [8usize, 32, 64, 128, 256];
    let nis: Vec<NiKind> = match location {
        DeviceLocation::IoBus => NiKind::ALL
            .into_iter()
            .filter(|&k| k != NiKind::Cni16Qm)
            .collect(),
        _ => NiKind::ALL.to_vec(),
    };

    println!("\nround-trip latency in microseconds — {label}");
    print!("{:>8}", "bytes");
    for ni in &nis {
        print!("{:>10}", ni.to_string());
    }
    println!();
    for bytes in sizes {
        print!("{bytes:>8}");
        for &ni in &nis {
            let cfg = MachineConfig::for_bus(2, ni, location);
            let report = round_trip_latency(
                &cfg,
                &LatencyParams {
                    message_bytes: bytes,
                    iterations: 12,
                },
            );
            print!("{:>10.2}", report.round_trip_micros);
        }
        println!();
    }
}

fn main() {
    sweep(DeviceLocation::MemoryBus, "NI on the coherent memory bus");
    sweep(DeviceLocation::IoBus, "NI on the coherent I/O bus");
    println!("\nExpected shape (paper §5.1): every CNI beats NI2w, the CQ-based CNIs beat CNI4,");
    println!("and the gap grows with message size and on the slower I/O bus.");
}
