//! Run two of the paper's macrobenchmarks (gauss and moldyn) on an
//! eight-node machine and report the speedup each coherent NI achieves over
//! the conventional `NI2w`, mirroring Figure 8(a) on a small input.
//!
//! Run with `cargo run --release --example macro_speedups`.

use cni::core::machine::{Machine, MachineConfig};
use cni::nic::NiKind;
use cni::workloads::{Workload, WorkloadParams};

fn main() {
    let nodes = 8;
    let params = WorkloadParams::tiny();
    let workloads = [Workload::Gauss, Workload::Moldyn];

    println!("macrobenchmark speedups over NI2w on the memory bus ({nodes} nodes, tiny inputs)\n");
    print!("{:>10}", "benchmark");
    for ni in NiKind::ALL {
        print!("{:>10}", ni.to_string());
    }
    println!();

    for workload in workloads {
        let mut baseline = None;
        print!("{:>10}", workload.to_string());
        for ni in NiKind::ALL {
            let cfg = MachineConfig::isca96(nodes, ni);
            let mut machine = Machine::new(cfg, workload.programs(nodes, &params));
            let report = machine.run();
            assert!(report.completed, "{workload} must complete on {ni}");
            let base = *baseline.get_or_insert(report.cycles);
            print!("{:>10.2}", base as f64 / report.cycles as f64);
        }
        println!();
    }
    println!("\ngauss (2 KB broadcasts) and moldyn (1.5 KB ring reduction) benefit most from");
    println!("whole-cache-block transfers, matching the block-transfer discussion in §5.2.");
}
