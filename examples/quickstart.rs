//! Quickstart: measure the round-trip latency and streaming bandwidth of one
//! coherent network interface and compare it with the conventional `NI2w`.
//!
//! Run with `cargo run --release --example quickstart`. A doctested
//! miniature of this example lives in the root crate docs (`src/lib.rs`),
//! so `cargo test -q` keeps the API it uses honest.

use cni::core::machine::MachineConfig;
use cni::core::micro::{round_trip_latency, stream_bandwidth, BandwidthParams, LatencyParams};
use cni::nic::NiKind;

fn main() {
    let latency_params = LatencyParams {
        message_bytes: 64,
        iterations: 16,
    };
    let bandwidth_params = BandwidthParams {
        message_bytes: 2048,
        messages: 64,
    };

    println!("64-byte round-trip latency and 2 KB streaming bandwidth on the memory bus\n");
    println!(
        "{:>10} {:>18} {:>18} {:>14}",
        "NI", "round trip (us)", "bandwidth (MB/s)", "rel. bandwidth"
    );
    for ni in [NiKind::Ni2w, NiKind::Cni4, NiKind::Cni512Q, NiKind::Cni16Qm] {
        let cfg = MachineConfig::isca96(2, ni);
        let lat = round_trip_latency(&cfg, &latency_params);
        let bw = stream_bandwidth(&cfg, &bandwidth_params);
        println!(
            "{:>10} {:>18.2} {:>18.1} {:>14.2}",
            ni.to_string(),
            lat.round_trip_micros,
            bw.mbytes_per_sec,
            bw.relative
        );
    }
    println!("\nCoherent NIs move whole 64-byte cache blocks per bus transaction and poll in");
    println!("the cache, so they beat the uncached NI2w on both metrics (paper §5.1).");
}
