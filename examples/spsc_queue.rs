//! The host-usable cachable queue: the paper's CQ algorithm (valid bits,
//! sense reverse, lazy pointers) running as a real lock-free SPSC queue
//! between two threads.
//!
//! Run with `cargo run --release --example spsc_queue`.

use std::thread;
use std::time::Instant;

use cni::core::cq::{cachable_queue, CdrChannel};

fn main() {
    const MESSAGES: u64 = 1_000_000;
    let (mut tx, mut rx) = cachable_queue::<u64>(256);

    let start = Instant::now();
    let producer = thread::spawn(move || {
        for i in 0..MESSAGES {
            tx.send_blocking(i);
        }
        tx.shadow_refreshes()
    });
    let consumer = thread::spawn(move || {
        let mut checksum = 0u64;
        for expected in 0..MESSAGES {
            let v = rx.recv_blocking();
            assert_eq!(v, expected, "cachable queues preserve FIFO order");
            checksum = checksum.wrapping_add(v);
        }
        checksum
    });
    let refreshes = producer.join().expect("producer thread");
    let checksum = consumer.join().expect("consumer thread");
    let elapsed = start.elapsed();

    assert_eq!(checksum, (0..MESSAGES).sum::<u64>());
    println!("moved {MESSAGES} messages through a 256-entry cachable queue in {elapsed:.2?}");
    println!(
        "lazy pointers: the producer re-read the consumer's head only {refreshes} times \
         ({:.4} per message)",
        refreshes as f64 / MESSAGES as f64
    );

    // The CDR-style single-slot channel with its explicit reuse handshake.
    let cdr = CdrChannel::new();
    cdr.publish("status: ready").expect("register is empty");
    println!("CDR channel holds: {:?}", cdr.read());
    cdr.clear(); // the explicit handshake that makes the register reusable
    cdr.publish("status: busy")
        .expect("cleared register is reusable");
    println!("CDR channel holds: {:?}", cdr.read());
}
